//! Householder QR factorization (thin form).

use crate::{LinalgError, Mat, Result};
use rayon::prelude::*;

/// Flop count (trailing columns × active rows) above which reflector
/// application fans out across threads. Each column's update is an
/// independent dot-and-axpy with serial inner order, so the parallel path
/// is bit-identical to the serial one.
const PAR_QR_FLOPS: usize = 1 << 16;

/// Result of [`qr_thin`]: `a = q * r` with `q` having orthonormal columns.
#[derive(Debug, Clone)]
pub struct QrResult {
    /// `m × k` matrix with orthonormal columns, `k = min(m, n)`.
    pub q: Mat,
    /// `k × n` upper-triangular factor.
    pub r: Mat,
}

/// Thin QR of an `m × n` matrix via Householder reflections.
///
/// Returns `Q` (`m × k`) with orthonormal columns and upper-triangular `R`
/// (`k × n`) where `k = min(m, n)`, such that `Q R` reconstructs the input
/// to machine precision.
pub fn qr_thin(a: &Mat) -> Result<QrResult> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Err(LinalgError::Empty);
    }
    let k = m.min(n);
    // Work on the transpose so every matrix column is a contiguous row
    // slice: reflector application then splits into independent per-column
    // jobs (`par_chunks_mut`) without strided writes.
    let mut rt = a.transpose(); // n × m; row c holds column c of A.
    // Householder vectors, stored full-length for simplicity.
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(k);

    for j in 0..k {
        // Build the reflector annihilating column j below the diagonal.
        let mut v = vec![0.0; m];
        let mut norm = 0.0;
        for i in j..m {
            let x = rt[(j, i)];
            v[i] = x;
            norm += x * x;
        }
        let norm = norm.sqrt();
        if norm > 0.0 {
            let sign = if v[j] >= 0.0 { 1.0 } else { -1.0 };
            v[j] += sign * norm;
            let vnorm: f64 = v[j..].iter().map(|x| x * x).sum::<f64>().sqrt();
            if vnorm > 0.0 {
                for x in v[j..].iter_mut() {
                    *x /= vnorm;
                }
                // Apply (I - 2vvᵀ) to the remaining columns of R.
                apply_reflector(&mut rt.as_mut_slice()[j * m..n * m], m, j, &v);
            }
        }
        vs.push(v);
    }

    // Q = H_0 H_1 ... H_{k-1} applied to the first k columns of I,
    // accumulated in transposed (column-contiguous) form like R.
    let mut qt = Mat::zeros(k, m);
    for c in 0..k {
        qt[(c, c)] = 1.0;
    }
    for j in (0..k).rev() {
        apply_reflector(qt.as_mut_slice(), m, j, &vs[j]);
    }

    // Trim R to k × n and force exact zeros below the diagonal.
    let mut r_out = Mat::zeros(k, n);
    for i in 0..k {
        for j in 0..n {
            r_out[(i, j)] = if j >= i { rt[(j, i)] } else { 0.0 };
        }
    }
    Ok(QrResult {
        q: qt.transpose(),
        r: r_out,
    })
}

/// Apply `I − 2vvᵀ` (restricted to rows `j..`) to every length-`m` column
/// stored contiguously in `cols`. Columns are independent; each column's
/// dot product and update run in ascending row order on both paths.
fn apply_reflector(cols: &mut [f64], m: usize, j: usize, v: &[f64]) {
    let update = |col: &mut [f64]| {
        let dot: f64 = (j..m).map(|i| v[i] * col[i]).sum();
        if dot != 0.0 {
            for i in j..m {
                col[i] -= 2.0 * v[i] * dot;
            }
        }
    };
    let n_cols = cols.len() / m;
    if n_cols.saturating_mul(m - j) >= PAR_QR_FLOPS {
        cols.par_chunks_mut(m).for_each(update);
    } else {
        cols.chunks_mut(m).for_each(update);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::fro_norm;

    fn assert_close(a: &Mat, b: &Mat, tol: f64) {
        assert_eq!(a.shape(), b.shape());
        let d = a.sub(b).unwrap();
        assert!(
            fro_norm(&d) < tol,
            "matrices differ by {}",
            fro_norm(&d)
        );
    }

    #[test]
    fn reconstructs_tall() {
        let a = Mat::from_rows(&[
            &[1.0, 2.0],
            &[3.0, 4.0],
            &[5.0, 6.0],
        ]);
        let QrResult { q, r } = qr_thin(&a).unwrap();
        assert_eq!(q.shape(), (3, 2));
        assert_eq!(r.shape(), (2, 2));
        assert_close(&q.matmul(&r).unwrap(), &a, 1e-12);
    }

    #[test]
    fn q_orthonormal() {
        let a = Mat::from_rows(&[
            &[2.0, -1.0, 0.5],
            &[0.0, 3.0, 1.0],
            &[1.0, 1.0, 1.0],
            &[4.0, 0.0, -2.0],
        ]);
        let QrResult { q, .. } = qr_thin(&a).unwrap();
        let qtq = q.transpose().matmul(&q).unwrap();
        assert_close(&qtq, &Mat::eye(3), 1e-12);
    }

    #[test]
    fn r_upper_triangular() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 10.0]]);
        let QrResult { r, .. } = qr_thin(&a).unwrap();
        for i in 0..3 {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn wide_matrix() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0]]);
        let QrResult { q, r } = qr_thin(&a).unwrap();
        assert_eq!(q.shape(), (2, 2));
        assert_eq!(r.shape(), (2, 4));
        assert_close(&q.matmul(&r).unwrap(), &a, 1e-12);
    }

    #[test]
    fn empty_errors() {
        assert!(matches!(qr_thin(&Mat::zeros(0, 3)), Err(LinalgError::Empty)));
    }

    #[test]
    fn rank_deficient_still_reconstructs() {
        // Second column is 2x the first.
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let QrResult { q, r } = qr_thin(&a).unwrap();
        assert_close(&q.matmul(&r).unwrap(), &a, 1e-12);
    }
}
