//! Randomized truncated SVD (Halko–Martinsson–Tropp).
//!
//! The Gram-trick SVD in [`crate::svd`] is ideal when one dimension is
//! tiny (RPCA on `time_steps × N²` matrices). When *both* dimensions grow
//! — e.g. snapshot counts in the hundreds for long-horizon traces — a
//! randomized range finder with a few power iterations computes the top-k
//! triplets in `O(mnk)` without ever forming a Gram matrix, with
//! accuracy within a small factor of the optimal rank-k approximation
//! (with high probability).

use crate::qr::qr_thin;
use crate::svd::{svd_thin, Svd};
use crate::{LinalgError, Mat, Result};

/// Options for [`randomized_svd`].
#[derive(Debug, Clone)]
pub struct RandomizedSvdOptions {
    /// Oversampling beyond the target rank (classic choice: 5–10).
    pub oversample: usize,
    /// Power iterations to sharpen the spectrum (0–3; 2 handles slowly
    /// decaying spectra).
    pub power_iters: usize,
    /// Seed for the Gaussian test matrix.
    pub seed: u64,
}

impl Default for RandomizedSvdOptions {
    fn default() -> Self {
        RandomizedSvdOptions {
            oversample: 8,
            power_iters: 2,
            seed: 0x5EED,
        }
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Deterministic standard-normal value for entry `k` of stream `seed`.
fn gaussian(seed: u64, k: u64) -> f64 {
    let h1 = splitmix(seed ^ k.wrapping_mul(0x9E3779B97F4A7C15));
    let h2 = splitmix(h1 ^ 0xD1B54A32D192ED03);
    let u1 = ((h1 >> 11) as f64 * (1.0 / (1u64 << 53) as f64)).max(f64::MIN_POSITIVE);
    let u2 = (h2 >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Top-`k` singular triplets of `a` via a randomized range finder.
///
/// Returns at most `min(k, min(m, n))` triplets in descending order.
///
/// # Errors
/// [`LinalgError::Empty`] for empty input or `k == 0`.
pub fn randomized_svd(a: &Mat, k: usize, opts: &RandomizedSvdOptions) -> Result<Svd> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 || k == 0 {
        return Err(LinalgError::Empty);
    }
    let target = k.min(m.min(n));
    let l = (target + opts.oversample).min(n.min(m));

    // Gaussian test matrix Ω (n × l), deterministic in the seed.
    let mut omega = Mat::zeros(n, l);
    for i in 0..n {
        for j in 0..l {
            omega[(i, j)] = gaussian(opts.seed, (i * l + j) as u64);
        }
    }

    // Range sketch Y = A Ω, orthonormalized; power iterations
    // Y ← A (Aᵀ Q) sharpen the separation of the top singular values.
    let mut q = qr_thin(&a.matmul(&omega)?)?.q;
    for _ in 0..opts.power_iters {
        let z = qr_thin(&a.transpose().matmul(&q)?)?.q;
        q = qr_thin(&a.matmul(&z)?)?.q;
    }

    // Project: B = Qᵀ A (l × n), small SVD, lift U back.
    let b = q.transpose().matmul(a)?;
    let small = svd_thin(&b)?;
    let u = q.matmul(&small.u)?;

    // Truncate to the requested rank.
    let keep = target.min(small.s.len());
    let mut u_out = Mat::zeros(m, keep);
    let mut v_out = Mat::zeros(n, keep);
    for c in 0..keep {
        for r in 0..m {
            u_out[(r, c)] = u[(r, c)];
        }
        for r in 0..n {
            v_out[(r, c)] = small.v[(r, c)];
        }
    }
    Ok(Svd {
        u: u_out,
        s: small.s[..keep].to_vec(),
        v: v_out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::fro_norm;

    /// Deterministic low-rank test matrix: sum of r outer products.
    fn low_rank(m: usize, n: usize, r: usize) -> Mat {
        let mut a = Mat::zeros(m, n);
        for k in 0..r {
            let scale = 10.0 / (1 + k) as f64;
            let u: Vec<f64> = (0..m).map(|i| ((i * 7 + k * 3) % 5) as f64 - 2.0).collect();
            let v: Vec<f64> = (0..n).map(|j| ((j * 11 + k) % 7) as f64 - 3.0).collect();
            a.axpy(scale, &Mat::outer(&u, &v)).unwrap();
        }
        a
    }

    #[test]
    fn recovers_exact_low_rank() {
        let a = low_rank(40, 60, 3);
        let svd = randomized_svd(&a, 3, &RandomizedSvdOptions::default()).unwrap();
        let back = svd.reconstruct().unwrap();
        let err = fro_norm(&back.sub(&a).unwrap()) / fro_norm(&a);
        assert!(err < 1e-8, "relative error {err}");
    }

    #[test]
    fn matches_dense_svd_leading_values() {
        let a = low_rank(25, 30, 5);
        let dense = svd_thin(&a).unwrap();
        let rand = randomized_svd(&a, 5, &RandomizedSvdOptions::default()).unwrap();
        // Tolerance relative to σ₁: trailing values may be numerical zeros
        // whose noise floors differ between the two algorithms.
        let scale = dense.s[0];
        for k in 0..5 {
            let (x, y) = (dense.s[k], rand.s[k]);
            assert!((x - y).abs() <= 1e-8 * scale, "σ{k}: {x} vs {y}");
        }
    }

    #[test]
    fn truncates_to_requested_rank() {
        let a = low_rank(20, 20, 6);
        let svd = randomized_svd(&a, 2, &RandomizedSvdOptions::default()).unwrap();
        assert_eq!(svd.k(), 2);
        assert_eq!(svd.u.shape(), (20, 2));
        assert_eq!(svd.v.shape(), (20, 2));
    }

    #[test]
    fn rank_one_plus_noise_dominant_direction() {
        let mut a = Mat::outer(
            &(0..30).map(|i| 1.0 + (i % 3) as f64).collect::<Vec<_>>(),
            &(0..50).map(|j| 2.0 + (j % 5) as f64).collect::<Vec<_>>(),
        );
        // Tiny deterministic perturbation.
        for i in 0..30 {
            for j in 0..50 {
                a[(i, j)] += 1e-6 * gaussian(7, (i * 50 + j) as u64);
            }
        }
        let svd = randomized_svd(&a, 1, &RandomizedSvdOptions::default()).unwrap();
        let back = svd.reconstruct().unwrap();
        let err = fro_norm(&back.sub(&a).unwrap()) / fro_norm(&a);
        assert!(err < 1e-4, "rank-1 approximation error {err}");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = low_rank(15, 18, 4);
        let o = RandomizedSvdOptions::default();
        let s1 = randomized_svd(&a, 4, &o).unwrap();
        let s2 = randomized_svd(&a, 4, &o).unwrap();
        assert_eq!(s1.s, s2.s);
    }

    #[test]
    fn empty_and_zero_k_rejected() {
        let a = low_rank(5, 5, 1);
        assert!(matches!(
            randomized_svd(&a, 0, &RandomizedSvdOptions::default()),
            Err(LinalgError::Empty)
        ));
        assert!(matches!(
            randomized_svd(&Mat::zeros(0, 3), 2, &RandomizedSvdOptions::default()),
            Err(LinalgError::Empty)
        ));
    }
}
