//! Row-major dense `f64` matrix.

use crate::{LinalgError, Result};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::ops::{Index, IndexMut};

/// Element count above which matrix multiplication parallelizes over rows.
const PAR_MATMUL_FLOPS: usize = 1 << 20;

/// A dense, row-major matrix of `f64`.
///
/// The layout is a single contiguous `Vec<f64>` of length `rows * cols`;
/// element `(i, j)` lives at index `i * cols + j`. All arithmetic routines
/// check shapes and return [`LinalgError::ShapeMismatch`] on disagreement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Create a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a matrix filled with a constant value.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Mat {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn eye(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major vector. Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Mat::from_vec: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Mat { rows, cols, data }
    }

    /// Build from nested row slices. Panics on ragged input.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "Mat::from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Mat { rows: r, cols: c, data }
    }

    /// Build an `n × n` diagonal matrix from the given diagonal entries.
    pub fn diag(entries: &[f64]) -> Self {
        let n = entries.len();
        let mut m = Mat::zeros(n, n);
        for (i, &v) in entries.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True when either dimension is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Borrow the backing row-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the backing row-major slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume and return the backing vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        debug_assert!(j < self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Transpose into a new matrix.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// Uses an i-k-j loop order for cache friendliness; parallelizes over
    /// rows with rayon when the flop count is large enough to amortize the
    /// fork/join.
    pub fn matmul(&self, rhs: &Mat) -> Result<Mat> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let mut out = Mat::zeros(m, n);
        let flops = m * k * n;
        let body = |(i, out_row): (usize, &mut [f64])| {
            let a_row = self.row(i);
            for (kk, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = rhs.row(kk);
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        };
        if flops >= PAR_MATMUL_FLOPS {
            out.data
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(i, row)| body((i, row)));
        } else {
            out.data
                .chunks_mut(n)
                .enumerate()
                .for_each(|(i, row)| body((i, row)));
        }
        Ok(out)
    }

    /// Matrix–vector product `self * x`.
    ///
    /// Parallelizes over output rows for large products; each row's dot
    /// product runs left-to-right either way, so the parallel path is
    /// bit-identical to the serial one.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if self.cols != x.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        let dot = |i: usize| -> f64 {
            self.row(i)
                .iter()
                .zip(x.iter())
                .map(|(a, b)| a * b)
                .sum()
        };
        if self.rows * self.cols >= PAR_MATMUL_FLOPS {
            Ok((0..self.rows).into_par_iter().map(dot).collect())
        } else {
            Ok((0..self.rows).map(dot).collect())
        }
    }

    /// Gram matrix of the rows: `self * selfᵀ` (shape `rows × rows`).
    ///
    /// Exploits symmetry — only the upper triangle is computed.
    pub fn gram_rows(&self) -> Mat {
        let m = self.rows;
        let mut g = Mat::zeros(m, m);
        let rows: Vec<&[f64]> = (0..m).map(|i| self.row(i)).collect();
        let upper: Vec<(usize, Vec<f64>)> = (0..m)
            .into_par_iter()
            .map(|i| {
                let ri = rows[i];
                let vals: Vec<f64> = (i..m)
                    .map(|j| ri.iter().zip(rows[j]).map(|(a, b)| a * b).sum())
                    .collect();
                (i, vals)
            })
            .collect();
        for (i, vals) in upper {
            for (off, v) in vals.into_iter().enumerate() {
                let j = i + off;
                g[(i, j)] = v;
                g[(j, i)] = v;
            }
        }
        g
    }

    /// Gram matrix of the columns: `selfᵀ * self` (shape `cols × cols`).
    pub fn gram_cols(&self) -> Mat {
        self.transpose().gram_rows()
    }

    /// Elementwise sum `self + rhs`.
    pub fn add(&self, rhs: &Mat) -> Result<Mat> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Elementwise difference `self - rhs`.
    pub fn sub(&self, rhs: &Mat) -> Result<Mat> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Elementwise combination of two equally shaped matrices.
    pub fn zip_with(
        &self,
        rhs: &Mat,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Mat> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Mat {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Multiply every element by a scalar, returning a new matrix.
    pub fn scale(&self, s: f64) -> Mat {
        let data = self.data.iter().map(|&v| v * s).collect();
        Mat {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place `self += alpha * rhs` (axpy).
    pub fn axpy(&mut self, alpha: f64, rhs: &Mat) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "axpy",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Apply `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Mat {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Outer product of two vectors: `u vᵀ` (shape `u.len() × v.len()`).
    pub fn outer(u: &[f64], v: &[f64]) -> Mat {
        let mut m = Mat::zeros(u.len(), v.len());
        for (i, &a) in u.iter().enumerate() {
            for (j, &b) in v.iter().enumerate() {
                m[(i, j)] = a * b;
            }
        }
        m
    }

    /// Stack matrices vertically (all must share a column count).
    pub fn vstack(parts: &[&Mat]) -> Result<Mat> {
        let cols = parts.first().ok_or(LinalgError::Empty)?.cols;
        let mut data = Vec::new();
        let mut rows = 0;
        for p in parts {
            if p.cols != cols {
                return Err(LinalgError::ShapeMismatch {
                    op: "vstack",
                    lhs: (rows, cols),
                    rhs: p.shape(),
                });
            }
            data.extend_from_slice(&p.data);
            rows += p.rows;
        }
        Ok(Mat { rows, cols, data })
    }

    /// Maximum absolute element, 0.0 for empty matrices.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    }

    /// Mean of each column, as a vector of length `cols`.
    pub fn col_means(&self) -> Vec<f64> {
        if self.rows == 0 {
            return vec![0.0; self.cols];
        }
        let mut sums = vec![0.0; self.cols];
        for i in 0..self.rows {
            for (s, &v) in sums.iter_mut().zip(self.row(i)) {
                *s += v;
            }
        }
        let n = self.rows as f64;
        sums.iter_mut().for_each(|s| *s /= n);
        sums
    }

    /// Minimum of each column, as a vector of length `cols`.
    pub fn col_mins(&self) -> Vec<f64> {
        let mut mins = vec![f64::INFINITY; self.cols];
        for i in 0..self.rows {
            for (m, &v) in mins.iter_mut().zip(self.row(i)) {
                if v < *m {
                    *m = v;
                }
            }
        }
        mins
    }

    /// Median of each column (the lower median for even row counts).
    pub fn col_medians(&self) -> Vec<f64> {
        (0..self.cols)
            .map(|j| {
                let mut c = self.col(j);
                c.sort_by(|a, b| a.partial_cmp(b).unwrap());
                if c.is_empty() {
                    0.0
                } else {
                    c[(c.len() - 1) / 2]
                }
            })
            .collect()
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_eye() {
        let z = Mat::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Mat::eye(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn from_rows_roundtrip() {
        let m = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_ragged_panics() {
        Mat::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn transpose_involution() {
        let m = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_known() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Mat::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity() {
        let a = Mat::from_rows(&[&[1.0, -2.0, 0.5], &[0.0, 3.0, 7.0]]);
        let i = Mat::eye(3);
        assert_eq!(a.matmul(&i).unwrap(), a);
    }

    #[test]
    fn matmul_shape_error() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn matvec_known() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
    }

    #[test]
    fn gram_rows_matches_explicit() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let g = a.gram_rows();
        let explicit = a.matmul(&a.transpose()).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!((g[(i, j)] - explicit[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn add_sub_axpy() {
        let a = Mat::from_rows(&[&[1.0, 2.0]]);
        let b = Mat::from_rows(&[&[3.0, -1.0]]);
        assert_eq!(a.add(&b).unwrap(), Mat::from_rows(&[&[4.0, 1.0]]));
        assert_eq!(a.sub(&b).unwrap(), Mat::from_rows(&[&[-2.0, 3.0]]));
        let mut c = a.clone();
        c.axpy(2.0, &b).unwrap();
        assert_eq!(c, Mat::from_rows(&[&[7.0, 0.0]]));
    }

    #[test]
    fn outer_product() {
        let m = Mat::outer(&[1.0, 2.0], &[3.0, 4.0, 5.0]);
        assert_eq!(m, Mat::from_rows(&[&[3.0, 4.0, 5.0], &[6.0, 8.0, 10.0]]));
    }

    #[test]
    fn vstack_rows() {
        let a = Mat::from_rows(&[&[1.0, 2.0]]);
        let b = Mat::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let s = Mat::vstack(&[&a, &b]).unwrap();
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn col_stats() {
        let m = Mat::from_rows(&[&[1.0, 10.0], &[3.0, 20.0], &[2.0, 60.0]]);
        assert_eq!(m.col_means(), vec![2.0, 30.0]);
        assert_eq!(m.col_mins(), vec![1.0, 10.0]);
        assert_eq!(m.col_medians(), vec![2.0, 20.0]);
    }

    #[test]
    fn max_abs() {
        let m = Mat::from_rows(&[&[1.0, -7.5], &[3.0, 2.0]]);
        assert_eq!(m.max_abs(), 7.5);
        assert_eq!(Mat::zeros(0, 0).max_abs(), 0.0);
    }
}
