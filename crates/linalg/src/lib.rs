//! Dense linear-algebra kernels for the `cloudconst` workspace.
//!
//! This crate implements, from scratch, exactly the numerical machinery the
//! RPCA solvers in `cloudconst-rpca` need:
//!
//! * [`Mat`] — a row-major dense `f64` matrix with the usual arithmetic,
//!   BLAS-3 style multiplication (rayon-parallel above a size threshold), and
//!   structural helpers (transpose, slicing rows, outer products).
//! * [`eigen`] — a cyclic Jacobi eigensolver for symmetric matrices.
//! * [`svd`] — thin / truncated singular value decompositions. For the very
//!   wide matrices RPCA sees (a temporal performance matrix is
//!   `time_steps × N²`, e.g. `10 × 38416`), the SVD is computed through the
//!   Gram matrix of the *small* dimension, which is orders of magnitude
//!   faster than any direct bidiagonalization. A one-sided Jacobi SVD is
//!   provided as a high-accuracy cross-check.
//! * [`qr`] — Householder QR, used by tests and orthonormalization.
//! * [`shrink`] — the proximal operators of RPCA: elementwise
//!   soft-thresholding (ℓ₁ prox) and singular-value thresholding (nuclear
//!   norm prox).
//!
//! The crate is deliberately small and dependency-light; it is not a general
//! purpose linear algebra library, but every routine is exact about its
//! contract and tested against both hand-computed cases and property-based
//! random inputs.

pub mod eigen;
pub mod mat;
pub mod norms;
pub mod qr;
pub mod randomized;
pub mod shrink;
pub mod svd;

pub use eigen::{eigh, EighResult};
pub use mat::Mat;
pub use norms::{count_above, fro_norm, inf_norm, l1_norm, zero_norm_frac};
pub use qr::{qr_thin, QrResult};
pub use randomized::{randomized_svd, RandomizedSvdOptions};
pub use shrink::{soft_threshold, soft_threshold_into, svt, SvtResult};
pub use svd::{svd_jacobi, svd_thin, svd_trunc, Svd};

/// Relative tolerance used by default when deciding whether a singular or
/// eigen value is numerically zero.
pub const DEFAULT_RELATIVE_TOL: f64 = 1e-12;

/// Errors produced by routines in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left/first operand.
        lhs: (usize, usize),
        /// Shape of the right/second operand.
        rhs: (usize, usize),
    },
    /// The matrix was expected to be square.
    NotSquare {
        /// Actual shape.
        shape: (usize, usize),
    },
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// Which routine failed.
        routine: &'static str,
        /// Iterations performed.
        iters: usize,
    },
    /// The input was empty where a non-empty matrix is required.
    Empty,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs {}x{}, rhs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotSquare { shape } => {
                write!(f, "matrix must be square, got {}x{}", shape.0, shape.1)
            }
            LinalgError::NoConvergence { routine, iters } => {
                write!(f, "{routine} did not converge after {iters} iterations")
            }
            LinalgError::Empty => write!(f, "matrix must be non-empty"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LinalgError>;
