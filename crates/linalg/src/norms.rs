//! Matrix norms and sparsity measures.
//!
//! RPCA's objective mixes the nuclear norm (handled in [`crate::svd`]), the
//! ℓ₁ norm, and — in the paper's effectiveness metric — a "zero norm"
//! `‖E‖₀`. Floating-point RPCA output is never exactly zero, so the zero
//! norm here is a *thresholded count*: an entry counts as non-zero when its
//! magnitude exceeds `tol · max_abs(reference)`.

use crate::Mat;
use rayon::prelude::*;

/// Fixed reduction block: partial sums are taken over `SUM_BLOCK`-element
/// blocks and combined in block order on BOTH the serial and parallel
/// paths, so the two produce bit-identical results for any thread count.
const SUM_BLOCK: usize = 1024;

/// Element count above which norm reductions fan out across threads.
const PAR_NORM_ELEMS: usize = 1 << 15;

/// Blocked sum of `f(x)` over `data`: deterministic regardless of
/// parallelism (see [`SUM_BLOCK`]).
fn blocked_sum(data: &[f64], f: impl Fn(f64) -> f64 + Sync) -> f64 {
    let block_total = |block: &[f64]| block.iter().map(|&x| f(x)).sum::<f64>();
    if data.len() >= PAR_NORM_ELEMS {
        let partials: Vec<f64> = data.par_chunks(SUM_BLOCK).map(block_total).collect();
        partials.into_iter().sum()
    } else {
        data.chunks(SUM_BLOCK).map(block_total).sum()
    }
}

/// Frobenius norm: `sqrt(Σ aᵢⱼ²)`.
pub fn fro_norm(m: &Mat) -> f64 {
    blocked_sum(m.as_slice(), |v| v * v).sqrt()
}

/// Entrywise ℓ₁ norm: `Σ |aᵢⱼ|`.
pub fn l1_norm(m: &Mat) -> f64 {
    blocked_sum(m.as_slice(), |v| v.abs())
}

/// Entrywise infinity norm: `max |aᵢⱼ|`.
pub fn inf_norm(m: &Mat) -> f64 {
    m.max_abs()
}

/// Number of entries with `|aᵢⱼ| > threshold`.
pub fn count_above(m: &Mat, threshold: f64) -> usize {
    let data = m.as_slice();
    let block_count =
        |block: &[f64]| block.iter().filter(|v| v.abs() > threshold).count();
    if data.len() >= PAR_NORM_ELEMS {
        let partials: Vec<usize> = data.par_chunks(SUM_BLOCK).map(block_count).collect();
        partials.into_iter().sum()
    } else {
        data.iter().filter(|v| v.abs() > threshold).count()
    }
}

/// The paper's relative zero-norm `‖E‖₀ / ‖A‖₀` implemented with a
/// threshold relative to the scale of `reference`.
///
/// `‖E‖₀` counts entries of `e` whose magnitude exceeds
/// `rel_tol · max_abs(reference)`; `‖A‖₀` counts entries of `reference`
/// exceeding the same threshold. Returns 0.0 when `reference` is all
/// (numerically) zero.
pub fn zero_norm_frac(e: &Mat, reference: &Mat, rel_tol: f64) -> f64 {
    let scale = reference.max_abs();
    if scale == 0.0 {
        return 0.0;
    }
    let thresh = rel_tol * scale;
    let denom = count_above(reference, thresh);
    if denom == 0 {
        return 0.0;
    }
    count_above(e, thresh) as f64 / denom as f64
}

/// ℓ₁ analogue of [`zero_norm_frac`]: `‖E‖₁ / ‖A‖₁`.
///
/// Smoother than the thresholded count and used wherever the paper's
/// qualitative `Norm(N_E)` trends are checked against continuous quantities.
pub fn l1_norm_frac(e: &Mat, reference: &Mat) -> f64 {
    let denom = l1_norm(reference);
    if denom == 0.0 {
        0.0
    } else {
        l1_norm(e) / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fro_of_345() {
        let m = Mat::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((fro_norm(&m) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn l1_and_inf() {
        let m = Mat::from_rows(&[&[1.0, -2.0], &[3.0, -4.0]]);
        assert_eq!(l1_norm(&m), 10.0);
        assert_eq!(inf_norm(&m), 4.0);
    }

    #[test]
    fn count_above_threshold() {
        let m = Mat::from_rows(&[&[0.1, -2.0], &[3.0, 0.0]]);
        assert_eq!(count_above(&m, 0.5), 2);
        assert_eq!(count_above(&m, 0.0), 3);
    }

    #[test]
    fn zero_norm_frac_basic() {
        let a = Mat::full(2, 2, 10.0);
        let mut e = Mat::zeros(2, 2);
        e[(0, 0)] = 5.0;
        // threshold = 1e-6 * 10; one of four entries of e above it, all of a.
        assert!((zero_norm_frac(&e, &a, 1e-6) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_norm_frac_zero_reference() {
        let a = Mat::zeros(3, 3);
        let e = Mat::full(3, 3, 1.0);
        assert_eq!(zero_norm_frac(&e, &a, 1e-6), 0.0);
    }

    #[test]
    fn l1_frac() {
        let a = Mat::full(2, 2, 2.0);
        let e = Mat::full(2, 2, 1.0);
        assert!((l1_norm_frac(&e, &a) - 0.5).abs() < 1e-12);
        assert_eq!(l1_norm_frac(&e, &Mat::zeros(2, 2)), 0.0);
    }
}
