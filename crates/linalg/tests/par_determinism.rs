//! Bit-identity of parallel kernels.
//!
//! Every parallelized path in this crate claims to produce *bit-identical*
//! results to its serial predecessor: parallelism only splits independent
//! output elements (matmul/matvec/QR columns, shrinkage chunks) or uses the
//! same fixed-block reduction order on both paths (norms). These tests pin
//! that contract by re-implementing each serial predecessor naively and
//! comparing with exact equality on inputs large enough to take the
//! parallel path.

use cloudconst_linalg::{fro_norm, l1_norm, qr_thin, soft_threshold, svd_thin, Mat};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_mat(rows: usize, cols: usize, seed: u64) -> Mat {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f64> = (0..rows * cols)
        .map(|_| rng.random_range(-5.0..5.0))
        .collect();
    Mat::from_vec(rows, cols, data)
}

fn assert_bits_eq(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{what}: element {i} differs ({g} vs {w})"
        );
    }
}

#[test]
fn matmul_parallel_is_bit_identical_to_serial() {
    // 160×140 · 140×150 = 3.36M flops, above the 1M parallel threshold.
    let a = random_mat(160, 140, 1);
    let b = random_mat(140, 150, 2);
    let got = a.matmul(&b).unwrap();

    // Serial predecessor: i-k-j loop order with the zero-skip.
    let (m, k, n) = (160, 140, 150);
    let mut want = vec![0.0f64; m * n];
    for i in 0..m {
        for kk in 0..k {
            let av = a[(i, kk)];
            if av == 0.0 {
                continue;
            }
            for j in 0..n {
                want[i * n + j] += av * b[(kk, j)];
            }
        }
    }
    assert_bits_eq(got.as_slice(), &want, "matmul");
}

#[test]
fn matvec_parallel_is_bit_identical_to_serial() {
    // 1300×900 = 1.17M ≥ the 1M threshold.
    let a = random_mat(1300, 900, 3);
    let x: Vec<f64> = random_mat(1, 900, 4).into_vec();
    let got = a.matvec(&x).unwrap();
    let want: Vec<f64> = (0..1300)
        .map(|i| a.row(i).iter().zip(x.iter()).map(|(p, q)| p * q).sum())
        .collect();
    assert_bits_eq(&got, &want, "matvec");
}

#[test]
fn gram_rows_parallel_is_bit_identical_to_serial() {
    let a = random_mat(48, 3000, 5);
    let got = a.gram_rows();
    let mut want = Mat::zeros(48, 48);
    for i in 0..48 {
        for j in i..48 {
            let dot: f64 = a.row(i).iter().zip(a.row(j)).map(|(p, q)| p * q).sum();
            want[(i, j)] = dot;
            want[(j, i)] = dot;
        }
    }
    assert_bits_eq(got.as_slice(), want.as_slice(), "gram_rows");
}

#[test]
fn norms_match_serial_blocked_reference() {
    // 10×38416 mirrors the paper-scale TP-matrix at N = 196; comfortably
    // above the parallel threshold.
    let a = random_mat(10, 38416, 6);
    // Reference: the same fixed 1024-element block order, serially.
    let fro_want = a
        .as_slice()
        .chunks(1024)
        .map(|b| b.iter().map(|&x| x * x).sum::<f64>())
        .sum::<f64>()
        .sqrt();
    let l1_want: f64 = a
        .as_slice()
        .chunks(1024)
        .map(|b| b.iter().map(|&x| x.abs()).sum::<f64>())
        .sum();
    assert_eq!(fro_norm(&a).to_bits(), fro_want.to_bits(), "fro_norm");
    assert_eq!(l1_norm(&a).to_bits(), l1_want.to_bits(), "l1_norm");
}

#[test]
fn soft_threshold_parallel_is_bit_identical_to_serial() {
    let a = random_mat(64, 1024, 7); // 65536 ≥ the 32768 threshold
    let got = soft_threshold(&a, 0.75);
    let want: Vec<f64> = a
        .as_slice()
        .iter()
        .map(|&x| {
            if x > 0.75 {
                x - 0.75
            } else if x < -0.75 {
                x + 0.75
            } else {
                0.0
            }
        })
        .collect();
    assert_bits_eq(got.as_slice(), &want, "soft_threshold");
}

#[test]
fn svd_v_accumulation_parallel_is_bit_identical_to_serial() {
    // Wide enough (n ≥ 8192) to take the parallel V-accumulation path.
    let a = random_mat(8, 9000, 8);
    let svd = svd_thin(&a).unwrap();
    // Serial predecessor: v[c][col] accumulates row contributions in
    // ascending row order with the zero-coefficient skip. U and σ are
    // computed before the parallel section, so reusing them isolates
    // exactly the parallelized accumulation.
    for (col, &sigma) in svd.s.iter().enumerate() {
        if sigma == 0.0 {
            continue;
        }
        let mut want = vec![0.0f64; 9000];
        for row in 0..8 {
            let coeff = svd.u[(row, col)] / sigma;
            if coeff == 0.0 {
                continue;
            }
            for (c, &av) in a.row(row).iter().enumerate() {
                want[c] += coeff * av;
            }
        }
        for (c, w) in want.iter().enumerate() {
            assert_eq!(
                svd.v[(c, col)].to_bits(),
                w.to_bits(),
                "svd V column {col}, element {c}"
            );
        }
    }
}

#[test]
fn qr_parallel_is_bit_identical_to_serial_householder() {
    // 300×260: trailing-column work exceeds the parallel threshold for
    // most of the factorization.
    let a = random_mat(300, 260, 9);
    let got = qr_thin(&a).unwrap();

    // Serial predecessor: textbook Householder on the un-transposed
    // matrix, columns updated one after another.
    let (m, n) = (300usize, 260usize);
    let k = m.min(n);
    let mut r = a.clone();
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(k);
    for j in 0..k {
        let mut v = vec![0.0; m];
        let mut norm = 0.0;
        for i in j..m {
            let x = r[(i, j)];
            v[i] = x;
            norm += x * x;
        }
        let norm = norm.sqrt();
        if norm > 0.0 {
            let sign = if v[j] >= 0.0 { 1.0 } else { -1.0 };
            v[j] += sign * norm;
            let vnorm: f64 = v[j..].iter().map(|x| x * x).sum::<f64>().sqrt();
            if vnorm > 0.0 {
                for x in v[j..].iter_mut() {
                    *x /= vnorm;
                }
                for c in j..n {
                    let dot: f64 = (j..m).map(|i| v[i] * r[(i, c)]).sum();
                    if dot != 0.0 {
                        for i in j..m {
                            r[(i, c)] -= 2.0 * v[i] * dot;
                        }
                    }
                }
            }
        }
        vs.push(v);
    }
    let mut q = Mat::zeros(m, k);
    for c in 0..k {
        q[(c, c)] = 1.0;
    }
    for j in (0..k).rev() {
        let v = &vs[j];
        for c in 0..k {
            let dot: f64 = (j..m).map(|i| v[i] * q[(i, c)]).sum();
            if dot != 0.0 {
                for i in j..m {
                    q[(i, c)] -= 2.0 * v[i] * dot;
                }
            }
        }
    }
    assert_bits_eq(got.q.as_slice(), q.as_slice(), "qr Q");
    for i in 0..k {
        for j in 0..n {
            let want = if j >= i { r[(i, j)] } else { 0.0 };
            assert_eq!(got.r[(i, j)].to_bits(), want.to_bits(), "qr R ({i},{j})");
        }
    }
}
