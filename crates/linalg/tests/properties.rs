//! Property-based tests of the linear-algebra kernels.

use cloudconst_linalg::{
    eigh, fro_norm, qr_thin, soft_threshold, svd_jacobi, svd_thin, svt, Mat,
};
use proptest::prelude::*;

/// Strategy: a matrix with entries in [-10, 10] and modest dimensions.
fn mat_strategy(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Mat> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f64..10.0, r * c)
            .prop_map(move |data| Mat::from_vec(r, c, data))
    })
}

/// Strategy: a symmetric matrix.
fn sym_strategy(max_n: usize) -> impl Strategy<Value = Mat> {
    mat_strategy(max_n, max_n).prop_map(|m| {
        let n = m.rows().min(m.cols());
        let mut s = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                s[(i, j)] = 0.5 * (m[(i, j.min(m.cols() - 1))] + m[(j, i.min(m.cols() - 1))]);
            }
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_associates_with_identity(m in mat_strategy(6, 6)) {
        let i = Mat::eye(m.cols());
        let prod = m.matmul(&i).unwrap();
        prop_assert_eq!(prod, m);
    }

    #[test]
    fn transpose_is_involution(m in mat_strategy(7, 7)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn gram_rows_matches_explicit_product(m in mat_strategy(5, 8)) {
        let g = m.gram_rows();
        let explicit = m.matmul(&m.transpose()).unwrap();
        let diff = g.sub(&explicit).unwrap();
        prop_assert!(fro_norm(&diff) <= 1e-9 * (1.0 + fro_norm(&explicit)));
    }

    #[test]
    fn svd_reconstructs(m in mat_strategy(6, 10)) {
        let svd = svd_thin(&m).unwrap();
        let back = svd.reconstruct().unwrap();
        let err = fro_norm(&back.sub(&m).unwrap());
        prop_assert!(err <= 1e-7 * (1.0 + fro_norm(&m)), "err {err}");
    }

    #[test]
    fn svd_values_sorted_and_nonnegative(m in mat_strategy(6, 10)) {
        let svd = svd_thin(&m).unwrap();
        for w in svd.s.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        for &s in &svd.s {
            prop_assert!(s >= 0.0);
        }
    }

    #[test]
    fn jacobi_svd_agrees_with_gram_svd(m in mat_strategy(5, 7)) {
        let a = svd_thin(&m).unwrap();
        let b = svd_jacobi(&m).unwrap();
        let scale = 1.0 + a.s.first().copied().unwrap_or(0.0);
        for (x, y) in a.s.iter().zip(b.s.iter()) {
            prop_assert!((x - y).abs() <= 1e-7 * scale, "{x} vs {y}");
        }
    }

    #[test]
    fn spectral_norm_bounds_frobenius(m in mat_strategy(6, 6)) {
        // σ₁ ≤ ‖A‖_F ≤ √rank · σ₁
        let svd = svd_thin(&m).unwrap();
        let s1 = svd.s.first().copied().unwrap_or(0.0);
        let f = fro_norm(&m);
        prop_assert!(s1 <= f + 1e-9);
        let k = svd.s.len() as f64;
        prop_assert!(f <= s1 * k.sqrt() + 1e-9);
    }

    #[test]
    fn eigh_reconstructs_symmetric(s in sym_strategy(6)) {
        let e = eigh(&s).unwrap();
        let lam = Mat::diag(&e.values);
        let back = e
            .vectors
            .matmul(&lam)
            .unwrap()
            .matmul(&e.vectors.transpose())
            .unwrap();
        let err = fro_norm(&back.sub(&s).unwrap());
        prop_assert!(err <= 1e-7 * (1.0 + fro_norm(&s)), "err {err}");
    }

    #[test]
    fn eigh_trace_preserved(s in sym_strategy(6)) {
        let trace: f64 = (0..s.rows()).map(|i| s[(i, i)]).sum();
        let e = eigh(&s).unwrap();
        let lam_sum: f64 = e.values.iter().sum();
        prop_assert!((trace - lam_sum).abs() <= 1e-8 * (1.0 + trace.abs()));
    }

    #[test]
    fn qr_reconstructs_and_q_orthonormal(m in mat_strategy(8, 5)) {
        let qr = qr_thin(&m).unwrap();
        let back = qr.q.matmul(&qr.r).unwrap();
        prop_assert!(fro_norm(&back.sub(&m).unwrap()) <= 1e-8 * (1.0 + fro_norm(&m)));
        let qtq = qr.q.transpose().matmul(&qr.q).unwrap();
        let eye = Mat::eye(qtq.rows());
        prop_assert!(fro_norm(&qtq.sub(&eye).unwrap()) <= 1e-8);
    }

    #[test]
    fn soft_threshold_shrinks_l1(m in mat_strategy(6, 6), tau in 0.0f64..5.0) {
        let s = soft_threshold(&m, tau);
        let l1_before: f64 = m.as_slice().iter().map(|v| v.abs()).sum();
        let l1_after: f64 = s.as_slice().iter().map(|v| v.abs()).sum();
        prop_assert!(l1_after <= l1_before + 1e-12);
        // Every entry moves toward zero by at most tau.
        for (a, b) in m.as_slice().iter().zip(s.as_slice()) {
            prop_assert!(b.abs() <= a.abs() + 1e-12);
            prop_assert!((a - b).abs() <= tau + 1e-12);
        }
    }

    #[test]
    fn svt_never_raises_singular_values(m in mat_strategy(5, 6), tau in 0.01f64..3.0) {
        let before = svd_thin(&m).unwrap().s;
        let r = svt(&m, tau).unwrap();
        let after = svd_thin(&r.mat).unwrap().s;
        for (k, &s_after) in after.iter().enumerate() {
            let s_before = before.get(k).copied().unwrap_or(0.0);
            prop_assert!(s_after <= s_before + 1e-7, "σ{k}: {s_after} > {s_before}");
        }
        prop_assert_eq!(r.rank, before.iter().filter(|&&s| s > tau).count());
    }

    #[test]
    fn col_stats_bounded_by_extremes(m in mat_strategy(6, 4)) {
        let means = m.col_means();
        let mins = m.col_mins();
        let medians = m.col_medians();
        for j in 0..m.cols() {
            let col = m.col(j);
            let max = col.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(mins[j] <= means[j] + 1e-12 && means[j] <= max + 1e-12);
            prop_assert!(mins[j] <= medians[j] && medians[j] <= max);
        }
    }
}
